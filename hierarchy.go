package pdbscan

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"pdbscan/internal/core"
	"pdbscan/internal/geom"
	"pdbscan/internal/grid"
	"pdbscan/internal/parallel"
	"pdbscan/internal/unionfind"
)

// Hierarchy is the eps-bounded DBSCAN* dendrogram of a Clusterer's points at
// one MinPts: the per-point core distances and the mutual-reachability
// minimum spanning forest, built once, with the forest edges sorted by
// weight. Any eps' in (0, Eps()] is then answered by CutEps — replaying the
// union-find over the edge prefix with weight <= eps'² — in near-linear time
// instead of a full clustering run, and CutK / ExtractStable read richer
// structure off the same forest.
//
// CutEps is exactly equivalent to a batch run at the same radius: every
// predicate on both sides is the identical squared-distance comparison
// (d² <= eps'², k-th smallest d² <= eps'²), so the forest threshold
// reproduces Cluster's components bit-for-bit, not merely approximately —
// the property the hierarchy conformance suite in oracle_test.go pins.
//
// A Hierarchy is immutable after construction and safe for concurrent use;
// concurrent CutEps calls serialize only the (cheap) union-find replay and
// run their border attachment in parallel.
type Hierarchy struct {
	cells  *grid.Cells
	k      geom.Kernel
	minPts int
	eps    float64 // the build (maximum queryable) radius
	eps2   float64

	cd2      []float64     // squared core distances; +Inf beyond eps
	edges    []core.MREdge // MR-MSF, ascending by (W2, A, B)
	cdSorted []float64     // finite cd2 values, ascending (CutK event scan)

	stats HierarchyStats

	// Incremental replay state: the union-find currently reflects the edge
	// prefix [0, replayPos). A query at a larger prefix advances it; a
	// smaller one resets and replays from the start. Guarded by mu — the
	// replay is the only mutable state, so concurrent cuts serialize here
	// and nowhere else.
	mu        sync.Mutex
	replayUF  *unionfind.UF
	replayPos int
}

// HierarchyStats describes one completed BuildHierarchy: phase wall-clock
// times and the size of the structure.
type HierarchyStats struct {
	CoreDist time.Duration // per-point core distance pass
	Edges    time.Duration // mutual-reachability enumeration + per-block Kruskal
	MST      time.Duration // global sort + final Kruskal
	Total    time.Duration
	NumEdges int // forest edges kept
	Workers  int
}

// lazyHierarchy caches one MinPts' hierarchy on the Clusterer, following the
// lazyCells discipline: a cancelled build is discarded — never latched — and
// the next request rebuilds; waiters select the in-flight build against
// their own cancellation.
type lazyHierarchy struct {
	building chan struct{} // non-nil while a build is in flight
	h        *Hierarchy
}

// BuildHierarchy builds (or returns the cached) hierarchy at the given
// MinPts, using all CPUs. It is BuildHierarchyContext with a background
// context and a default Config.
func (c *Clusterer) BuildHierarchy(minPts int) (*Hierarchy, error) {
	return c.BuildHierarchyContext(context.Background(), Config{MinPts: minPts})
}

// BuildHierarchyContext builds the dendrogram for cfg.MinPts on the
// Clusterer's cell structure. Honored Config fields: MinPts and Workers
// (plus Eps, which must be zero or the Clusterer's eps, as for Run); the
// connectivity-strategy fields do not apply — the hierarchy is built by
// direct cell scans.
//
// Hierarchies are cached per MinPts: the first call builds, later calls
// return the same *Hierarchy. Cancellation follows the lazyCells rule — a
// build interrupted by ctx stops at the next phase or cell boundary, returns
// ctx.Err(), and discards its partial state, so a later call rebuilds from
// scratch rather than serving a half-built structure.
func (c *Clusterer) BuildHierarchyContext(ctx context.Context, cfg Config) (h *Hierarchy, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.checkEps(cfg); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Sampler != SamplerNone {
		return nil, fmt.Errorf("pdbscan: the sampled-core mode does not apply to hierarchy builds; Sampler must be empty, got %q", cfg.Sampler)
	}
	defer recoverRunPanic(ctx, &err)
	ex := parallel.NewPoolContext(ctx, cfg.Workers)
	for {
		c.hierMu.Lock()
		if c.hiers == nil {
			c.hiers = make(map[int]*lazyHierarchy)
		}
		lh := c.hiers[cfg.MinPts]
		if lh == nil {
			lh = &lazyHierarchy{}
			c.hiers[cfg.MinPts] = lh
		}
		if lh.h != nil {
			h := lh.h
			c.hierMu.Unlock()
			return h, nil
		}
		if err := ex.Err(); err != nil {
			c.hierMu.Unlock()
			return nil, err
		}
		if lh.building == nil {
			// Claim the build; the settle runs in a defer so a panic inside
			// the build still releases the slot. Publish only clean builds.
			done := make(chan struct{})
			lh.building = done
			c.hierMu.Unlock()
			var built *Hierarchy
			defer func() {
				c.hierMu.Lock()
				lh.building = nil
				if built != nil {
					lh.h = built
				}
				c.hierMu.Unlock()
				close(done)
			}()
			built, err = c.buildHierarchy(cfg.MinPts, ex)
			return built, err
		}
		done := lh.building
		c.hierMu.Unlock()
		select {
		case <-done:
			// Re-check: published, or cancelled by its owner (we may claim
			// the rebuild).
		case <-ex.Done():
			return nil, ex.Err()
		}
	}
}

// buildHierarchy runs the core build and assembles the query-side state.
func (c *Clusterer) buildHierarchy(minPts int, ex *parallel.Pool) (*Hierarchy, error) {
	start := time.Now()
	cells, err := c.cellsFor(false, ex)
	if err != nil {
		return nil, err
	}
	var tm core.PhaseTimings
	hd, err := core.ComputeHierarchy(cells, core.Params{
		MinPts:    minPts,
		Exec:      ex,
		Arena:     c.arena,
		Timings:   &tm,
		PhaseHook: c.hierHook,
	})
	if err != nil {
		return nil, err
	}
	eps2 := c.eps * c.eps
	cdSorted := make([]float64, 0, len(hd.CoreDist2))
	for _, v := range hd.CoreDist2 {
		if v <= eps2 {
			cdSorted = append(cdSorted, v)
		}
	}
	sort.Float64s(cdSorted)
	return &Hierarchy{
		cells:    cells,
		k:        geom.NewKernel(cells.Pts),
		minPts:   minPts,
		eps:      c.eps,
		eps2:     eps2,
		cd2:      hd.CoreDist2,
		edges:    hd.Edges,
		cdSorted: cdSorted,
		stats: HierarchyStats{
			CoreDist: tm.CoreDist,
			Edges:    tm.Edges,
			MST:      tm.MST,
			Total:    time.Since(start),
			NumEdges: len(hd.Edges),
			Workers:  ex.Workers(),
		},
		replayUF: unionfind.New(cells.Pts.N),
	}, nil
}

// Eps returns the build radius: the largest eps CutEps can answer.
func (h *Hierarchy) Eps() float64 { return h.eps }

// MinPts returns the MinPts the hierarchy was built for.
func (h *Hierarchy) MinPts() int { return h.minPts }

// NumPoints returns the number of points.
func (h *Hierarchy) NumPoints() int { return h.cells.Pts.N }

// NumEdges returns the number of mutual-reachability forest edges.
func (h *Hierarchy) NumEdges() int { return len(h.edges) }

// BuildStats returns the phase timings of the build that produced h.
func (h *Hierarchy) BuildStats() HierarchyStats { return h.stats }

// CoreDistances returns a fresh copy of the per-point core distances: the
// distance to each point's MinPts-th nearest neighbor (counting itself), or
// +Inf for points with fewer than MinPts neighbors within the build eps.
func (h *Hierarchy) CoreDistances() []float64 {
	out := make([]float64, len(h.cd2))
	for i, v := range h.cd2 {
		out[i] = math.Sqrt(v)
	}
	return out
}

// ValidateEps checks that eps is a valid CutEps radius for this hierarchy:
// finite, positive, and at most the build eps. It is the validation CutEps
// itself applies; engine.Submit calls it up front so malformed sweep jobs
// are rejected at submission rather than at run time.
func (h *Hierarchy) ValidateEps(eps float64) error {
	if math.IsNaN(eps) || math.IsInf(eps, 0) || eps <= 0 {
		return fmt.Errorf("pdbscan: CutEps requires a finite eps > 0, got %v", eps)
	}
	if eps > h.eps {
		return fmt.Errorf("pdbscan: CutEps(%v) exceeds the hierarchy's build eps %v (build a Clusterer with a larger eps)", eps, h.eps)
	}
	return nil
}

// CutEps returns the DBSCAN clustering at radius eps (0 < eps <= Eps()) and
// the hierarchy's MinPts — label-permutation-equal to Cluster at the same
// parameters. It is CutEpsContext with a background context and all CPUs.
func (h *Hierarchy) CutEps(eps float64) (*Result, error) {
	return h.CutEpsContext(context.Background(), eps, 0)
}

// CutEpsContext is CutEps under a context and an explicit worker budget
// (0 = all CPUs). The replay itself is serial and brief; workers parallelize
// the border-attachment pass.
func (h *Hierarchy) CutEpsContext(ctx context.Context, eps float64, workers int) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := h.ValidateEps(eps); err != nil {
		return nil, err
	}
	if workers < 0 {
		return nil, fmt.Errorf("pdbscan: Workers must be >= 0, got %d (0 means all CPUs)", workers)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	defer recoverRunPanic(ctx, &err)
	return h.cutAt(ctx, eps*eps, workers)
}

// cutAt produces the clustering at squared threshold t2. Core points are
// those with cd2 <= t2; their components are the components of the forest
// prefix with W2 <= t2 (the Kruskal threshold property); border points
// attach to every cluster with a core point within the radius, exactly as
// the batch border pass does.
func (h *Hierarchy) cutAt(ctx context.Context, t2 float64, workers int) (*Result, error) {
	ex := parallel.NewPoolContext(ctx, workers)
	n := len(h.cd2)
	coreFlags := make([]bool, n)
	labels := make([]int32, n)
	rootLbl := make([]int32, n)
	for i := range rootLbl {
		rootLbl[i] = -1
	}
	prefix := sort.Search(len(h.edges), func(i int) bool { return h.edges[i].W2 > t2 })

	h.mu.Lock()
	if prefix < h.replayPos {
		h.replayUF.Reset(n)
		h.replayPos = 0
	}
	for _, e := range h.edges[h.replayPos:prefix] {
		h.replayUF.Union(e.A, e.B)
	}
	h.replayPos = prefix
	// Dense labels in ascending point order: Union links the higher root
	// under the lower, so a component's root is its minimum point index —
	// the numbering is deterministic regardless of how the prefix was
	// replayed.
	num := int32(0)
	for i := 0; i < n; i++ {
		if h.cd2[i] > t2 {
			labels[i] = -1
			continue
		}
		coreFlags[i] = true
		r := h.replayUF.Find(int32(i))
		if rootLbl[r] < 0 {
			rootLbl[r] = num
			num++
		}
		labels[i] = rootLbl[r]
	}
	h.mu.Unlock()

	if err := ex.Err(); err != nil {
		return nil, err
	}
	border := h.attachBorders(ex, t2, coreFlags, labels)
	if err := ex.Err(); err != nil {
		return nil, err
	}
	return &Result{
		Labels:      labels,
		Core:        coreFlags,
		Border:      border,
		NumClusters: int(num),
	}, nil
}

// attachBorders assigns each non-core point within the radius of some core
// point to that point's cluster (smallest label as primary; full membership
// in the returned map for multi-cluster border points). The build grid's
// neighbor lists cover every pair within the build eps, hence every pair
// within the (smaller) query radius. Unlike the batch border pass there is
// no one-label-per-cell shortcut: at a query radius below the build eps a
// single cell can hold core points of several clusters.
func (h *Hierarchy) attachBorders(ex *parallel.Pool, t2 float64, coreFlags []bool, labels []int32) map[int32][]int32 {
	c := h.cells
	numCells := c.NumCells()
	// Cells without any core at this threshold cannot attach a border point;
	// marking them once lets the scan skip whole cells (and, at small query
	// radii where cores are rare, nearly all work) instead of rediscovering
	// their emptiness point by point.
	coreIn := make([]bool, numCells)
	for g := 0; g < numCells; g++ {
		for _, p := range c.PointsOf(g) {
			if coreFlags[p] {
				coreIn[g] = true
				break
			}
		}
	}
	border := make(map[int32][]int32)
	var mu sync.Mutex
	ex.BlockedFor(numCells, 1, func(lo, hi int) {
		var found []int32
		var multiP []int32
		var multiM [][]int32
		for g := lo; g < hi; g++ {
			if ex.Cancelled() {
				break // partial labels; cutAt bails before building a Result
			}
			anyNear := coreIn[g]
			for _, nb := range c.Neighbors[g] {
				if anyNear {
					break
				}
				anyNear = coreIn[nb]
			}
			if !anyNear {
				continue
			}
			for _, p := range c.PointsOf(g) {
				if coreFlags[p] {
					continue
				}
				found = found[:0]
				if coreIn[g] {
					found = h.borderScanCell(p, int32(g), t2, coreFlags, labels, found)
				}
				for _, nb := range c.Neighbors[g] {
					if coreIn[nb] {
						found = h.borderScanCell(p, nb, t2, coreFlags, labels, found)
					}
				}
				if len(found) == 0 {
					continue
				}
				// Non-core points are visited by exactly one block (their own
				// cell's), so these writes never race.
				labels[p] = found[0]
				if len(found) > 1 {
					multiP = append(multiP, p)
					multiM = append(multiM, append([]int32(nil), found...))
				}
			}
		}
		if len(multiP) > 0 {
			mu.Lock()
			for i, p := range multiP {
				border[p] = multiM[i]
			}
			mu.Unlock()
		}
	})
	return border
}

// borderScanCell collects (ascending, deduplicated) the labels of cell g's
// core points within sqrt(t2) of point p.
func (h *Hierarchy) borderScanCell(p, g int32, t2 float64, coreFlags []bool, labels []int32, found []int32) []int32 {
	c := h.cells
	if h.k.PointBoxDistSqAt(p, c.BBLo, c.BBHi, g) > t2 {
		return found
	}
	for _, q := range c.PointsOf(int(g)) {
		if !coreFlags[q] {
			continue
		}
		lbl := labels[q]
		if containsLabel32(found, lbl) {
			continue
		}
		if h.k.DistSq(p, q) <= t2 {
			found = insertLabel32(found, lbl)
		}
	}
	return found
}

func containsLabel32(set []int32, l int32) bool {
	for _, v := range set {
		if v == l {
			return true
		}
	}
	return false
}

func insertLabel32(set []int32, l int32) []int32 {
	i := len(set)
	set = append(set, l)
	for i > 0 && set[i-1] > l {
		set[i] = set[i-1]
		i--
	}
	set[i] = l
	return set
}

// CutK returns the clustering with exactly k clusters, when some radius in
// (0, Eps()] yields one, together with such a radius. The cluster count as
// eps grows is not monotone — merges reduce it while newly core points add
// singleton clusters — so CutK scans the event values (core distances and
// forest edge weights) and picks the first threshold whose count is k. The
// returned radius is chosen inside that threshold's realizing interval so
// it round-trips: CutEps(eps) reproduces the returned result exactly. CutK
// errors when no threshold yields exactly k clusters.
func (h *Hierarchy) CutK(k int) (*Result, float64, error) {
	return h.CutKContext(context.Background(), k, 0)
}

// CutKContext is CutK under a context and an explicit worker budget.
func (h *Hierarchy) CutKContext(ctx context.Context, k, workers int) (res *Result, eps float64, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 1 {
		return nil, 0, fmt.Errorf("pdbscan: CutK requires k >= 1, got %d", k)
	}
	if workers < 0 {
		return nil, 0, fmt.Errorf("pdbscan: Workers must be >= 0, got %d (0 means all CPUs)", workers)
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	defer recoverRunPanic(ctx, &err)
	// clusters(t) = #{cd2 <= t} - #{forest edges with W2 <= t}: every core
	// point opens a cluster, every forest edge below the threshold merges
	// two (forest edges have no cycles and their endpoints are core at the
	// edge's weight). Scan the merged event sequence; evaluate only after
	// consuming all events of equal value.
	t2 := math.NaN()
	i, j := 0, 0
	for i < len(h.cdSorted) || j < len(h.edges) {
		var t float64
		if i < len(h.cdSorted) && (j >= len(h.edges) || h.cdSorted[i] <= h.edges[j].W2) {
			t = h.cdSorted[i]
		} else {
			t = h.edges[j].W2
		}
		for i < len(h.cdSorted) && h.cdSorted[i] <= t {
			i++
		}
		for j < len(h.edges) && h.edges[j].W2 <= t {
			j++
		}
		if i-j == k {
			t2 = t
			break
		}
	}
	if math.IsNaN(t2) {
		return nil, 0, fmt.Errorf("pdbscan: no eps in (0, %v] yields exactly %d clusters at MinPts=%d", h.eps, k, h.minPts)
	}
	// The count stays k on [t2, tNext) — up to the next event, or to the
	// build threshold when t2 was the last one.
	tNext := h.eps2
	if i < len(h.cdSorted) && h.cdSorted[i] < tNext {
		tNext = h.cdSorted[i]
	}
	if j < len(h.edges) && h.edges[j].W2 < tNext {
		tNext = h.edges[j].W2
	}
	// Return a radius whose square lands inside the plateau, so CutEps(eps)
	// reproduces this exact result despite sqrt rounding: start from the
	// plateau midpoint and nudge by ulps until the event count agrees.
	countAt := func(t float64) int {
		ci := sort.SearchFloat64s(h.cdSorted, t)
		for ci < len(h.cdSorted) && h.cdSorted[ci] == t {
			ci++
		}
		cj := sort.Search(len(h.edges), func(x int) bool { return h.edges[x].W2 > t })
		return ci - cj
	}
	eps = math.Sqrt(t2 + (tNext-t2)/2)
	if eps > h.eps {
		eps = h.eps
	}
	for try := 0; countAt(eps*eps) != k; try++ {
		if try >= 64 {
			// Pathologically narrow plateau: answer at the exact internal
			// threshold; the reported radius is then only approximate.
			res, err = h.cutAt(ctx, t2, workers)
			return res, math.Sqrt(t2), err
		}
		if eps*eps < t2 {
			eps = math.Nextafter(eps, math.Inf(1))
		} else {
			eps = math.Nextafter(eps, 0)
		}
	}
	res, err = h.cutAt(ctx, eps*eps, workers)
	if err != nil {
		return nil, 0, err
	}
	return res, eps, nil
}
