package pdbscan

import (
	"fmt"

	"pdbscan/internal/cellstore"
	"pdbscan/internal/core"
	"pdbscan/internal/geom"
	"pdbscan/internal/parallel"
)

// WriteStore persists this Clusterer's grid cell structure and points to path
// as an mmap-able cell store (internal/cellstore format), laid out
// shard-contiguously so OpenStoreClusterer + Config.Spill can later cluster
// the dataset one shard window at a time. shards controls the layout
// granularity — more shards mean smaller resident windows for Spill runs;
// shards <= 0 picks roughly one shard per 64k points. The grid structure is
// built first if no run has needed it yet (with a default worker pool).
//
// The store records the permutation back to this Clusterer's point order, so
// runs on the reopened store return labels indexed exactly like runs here.
func (c *Clusterer) WriteStore(path string, shards int) error {
	if c.store != nil {
		return fmt.Errorf("pdbscan: this Clusterer is already store-backed; copy the store file instead of re-exporting it")
	}
	ex := parallel.NewPool(0)
	cells, err := c.cellsFor(false, ex)
	if err != nil {
		return err
	}
	if shards <= 0 {
		shards = c.pts.N / autoShardPoints
		if shards < 1 {
			shards = 1
		}
	}
	part, err := c.partitionFor(cells, shards, ex)
	if err != nil {
		return err
	}
	return cellstore.Write(path, cells, part)
}

// OpenStoreClusterer opens a cell store written by WriteStore and returns a
// Clusterer backed by it. Spill runs (Config.Spill) stream the store one
// shard window at a time under Config.MaxResidentBytes; non-Spill runs map
// the whole point payload (resident on demand via the page cache) and run the
// normal in-RAM paths. Either way, results are indexed in the point order of
// the Clusterer that wrote the store — bit-identically equal to that
// Clusterer's own results for every grid-layout method.
//
// Call Close when done to release the mappings and the file handle.
func OpenStoreClusterer(path string) (*Clusterer, error) {
	st, err := cellstore.Open(path)
	if err != nil {
		return nil, err
	}
	return &Clusterer{
		// Data stays nil until a non-Spill run maps the payload; the
		// metadata-only fields serve NumPoints/Dims/Eps and Spill runs.
		pts:   geom.Points{N: st.NumPoints(), D: st.Dims()},
		eps:   st.Eps(),
		arena: core.NewArena(),
		store: st,
	}, nil
}

// Close releases a store-backed Clusterer's file handle and whole-payload
// mapping. It is a no-op for in-memory Clusterers. The Clusterer must not be
// used after Close.
func (c *Clusterer) Close() error {
	if c.store == nil {
		return nil
	}
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	if c.storeMap != nil {
		c.storeMap.Release()
		c.storeMap = nil
		c.pts.Data = nil
	}
	return c.store.Close()
}

// ensureMapped makes the whole point payload addressable as c.pts for the
// in-RAM paths of a store-backed Clusterer. Store order is the layout on
// disk; results are scattered back to the writer's order by scatterStore.
func (c *Clusterer) ensureMapped() error {
	if c.store == nil || c.pts.Data != nil {
		return nil
	}
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	if c.pts.Data != nil {
		return nil
	}
	m, err := c.store.MapPoints(0, c.store.NumCells())
	if err != nil {
		return err
	}
	c.storeMap = m
	c.pts.Data = m.Data
	return nil
}

// scatterStore re-indexes a store-order result into the writer's original
// point order through the store's recorded permutation.
func (c *Clusterer) scatterStore(ex *parallel.Pool, cres *core.Result) {
	origIdx := c.store.OrigIdx()
	n := len(cres.Labels)
	labels := make([]int32, n)
	coreFlags := make([]bool, n)
	ex.For(n, func(i int) {
		oi := origIdx[i]
		labels[oi] = cres.Labels[i]
		coreFlags[oi] = cres.Core[i]
	})
	border := make(map[int32][]int32, len(cres.Border))
	for p, ls := range cres.Border {
		border[int32(origIdx[p])] = ls
	}
	cres.Labels = labels
	cres.Core = coreFlags
	cres.Border = border
}
