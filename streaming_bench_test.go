// streaming_bench_test.go benchmarks the streaming tick loop: a sliding
// window over a generated point stream where each tick evicts the oldest
// batch, inserts a fresh one, and re-clusters. The incremental path
// (StreamingClusterer.Run) is compared against from-scratch re-clustering of
// the same window; cmd/dbscanbench's stream experiment records the same
// comparison into BENCH_stream.json.
package pdbscan

import (
	"fmt"
	"testing"

	"pdbscan/internal/dataset"
)

// streamBenchCase is one (window, churn) regime; churn is the fraction of the
// window replaced per tick.
type streamBenchCase struct {
	window int
	batch  int
	eps    float64
	minPts int
}

func (c streamBenchCase) name() string {
	return fmt.Sprintf("w=%d/batch=%d", c.window, c.batch)
}

// streamRows generates the time-ordered point stream the window slides over
// (drifting emitters — localized churn; see dataset.DriftStream).
func streamRows(n int) [][]float64 {
	pts := dataset.DriftStream(dataset.DriftStreamConfig{N: n, D: 2, Seed: 9})
	rows := make([][]float64, pts.N)
	for i := range rows {
		rows[i] = pts.At(i)
	}
	return rows
}

func BenchmarkStreamingTick(b *testing.B) {
	for _, c := range []streamBenchCase{
		{window: 20000, batch: 200, eps: 4, minPts: 10},
		{window: 20000, batch: 2000, eps: 4, minPts: 10},
	} {
		rows := streamRows(c.window * 10)
		cfg := Config{MinPts: c.minPts, Method: Method2DGridBCP}

		b.Run(c.name()+"/incremental", func(b *testing.B) {
			s, err := NewStreamingClusterer(2, c.eps)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Insert(rows[:c.window]); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Run(cfg); err != nil {
				b.Fatal(err)
			}
			next := c.window
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := make([][]float64, c.batch)
				for k := range batch {
					batch[k] = rows[(next+k)%len(rows)]
				}
				next += c.batch
				if _, err := s.Insert(batch); err != nil {
					b.Fatal(err)
				}
				s.Window(c.window)
				if _, err := s.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(c.name()+"/scratch", func(b *testing.B) {
			// The same sliding window, re-clustered from scratch each tick.
			window := make([][]float64, c.window)
			copy(window, rows[:c.window])
			next := c.window
			scratchCfg := cfg
			scratchCfg.Eps = c.eps
			if _, err := Cluster(window, scratchCfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				window = append(window[c.batch:], rowsSlice(rows, next, c.batch)...)
				next += c.batch
				if _, err := Cluster(window, scratchCfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func rowsSlice(rows [][]float64, start, n int) [][]float64 {
	out := make([][]float64, n)
	for k := range out {
		out[k] = rows[(start+k)%len(rows)]
	}
	return out
}

// BenchmarkStreamingInsert measures the pure mutation cost (no clustering).
func BenchmarkStreamingInsert(b *testing.B) {
	rows := streamRows(100000)
	s, err := NewStreamingClusterer(2, 300)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Insert(rows[i%len(rows) : i%len(rows)+1]); err != nil {
			b.Fatal(err)
		}
		s.Window(50000)
	}
}
