package pdbscan

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"pdbscan/internal/core"
	"pdbscan/internal/grid"
	"pdbscan/internal/parallel"
)

// StreamingClusterer maintains a point set under insertions and removals and
// re-clusters it incrementally: each Run touches only the cells whose
// eps-neighborhood changed since the previous Run, reusing everything else —
// cell point lists, bounding boxes, neighbor lists, core flags, per-cell
// quadtrees, and cell-graph edge booleans. The per-tick cost is proportional
// to the dirtied region (plus cheap linear bookkeeping), not to the distance
// work of a full re-clustering, which is what makes sliding-window workloads
// (lidar frames, live geodata, telemetry) affordable at high tick rates.
//
// The guarantee is exactness, not approximation: for every Method (including
// the Gan–Tao approximate ones) Run returns the same clustering a from-scratch
// Cluster produces on the current point set, up to cluster label permutation.
// This works because the cell structure depends only on the points and Eps
// (Sections 4.1–4.2) and is anchored to the absolute side-grid lattice, and
// because every piece of derived state is invalidated whenever anything in
// its eps-neighborhood changes. The oracle and metamorphic test suites
// enforce the equality on every tick.
//
// Points are identified by the int64 ids Insert assigns; results are reported
// in insertion order (row k of a StreamResult is the k-th oldest live point).
// A StreamingClusterer is safe for concurrent use; mutations and Runs are
// serialized internally (the incremental caches are single-writer), while
// each Run still parallelizes internally under its own Config.Workers budget.
//
// Two minor semantic differences from the batch path, both method-visible
// only in performance, never in results: the 2d-box-* methods are served by
// the grid cell layout (identical clustering — all exact methods agree), and
// Config.Bucketing is ignored (it schedules a pruned batch traversal the
// incremental edge evaluation replaces).
//
// Config.Shards > 1 routes a Run through the sharded partition/merge path
// instead of the incremental one: the full window is re-clustered (same
// results, as everywhere) and the incremental caches are dropped, so the
// next incremental Run starts from scratch. Shards = 0 (auto) always stays
// incremental — per-tick reuse is this type's reason to exist.
type StreamingClusterer struct {
	mu    sync.Mutex
	dims  int
	eps   float64
	dyn   *grid.Dynamic
	inc   *core.Incremental
	arena *core.Arena // pooled pipeline scratch, reused across ticks

	ids    []int64         // live ids, insertion order
	slots  []int32         // point slot of ids[k] (kept aligned with ids)
	slotOf map[int64]int32 // id -> point slot
	nextID int64

	lastStats StreamStats
}

// StreamStats describes what the most recent Run had to recompute.
type StreamStats struct {
	// NumPoints and NumCells describe the clustered snapshot (NumCells
	// counts non-empty cells).
	NumPoints int
	NumCells  int
	// DirtyCells is the size of the affected set: cells whose core flags and
	// incident cell-graph edges were recomputed. 0 for a mutation-free,
	// config-stable rerun; equal to NumCells on a Full run.
	DirtyCells int
	// Full marks a run that reused nothing: the first, one right after a
	// sharded or failed run dropped the caches, or any run through the
	// sharded path itself.
	Full bool
}

// LastRunStats returns the StreamStats of the most recent Run.
func (s *StreamingClusterer) LastRunStats() StreamStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastStats
}

// StreamResult is the output of StreamingClusterer.Run. The embedded Result
// is indexed by position in IDs: Labels[k], Core[k], and Border's keys refer
// to the k-th live point in insertion order, whose id is IDs[k].
type StreamResult struct {
	Result
	// IDs lists the live point ids in insertion order, aligned with the
	// embedded Result's rows.
	IDs []int64
}

// LabelOf returns the cluster label of the point with the given id, or
// (-1, false) if the id is not in the result.
func (r *StreamResult) LabelOf(id int64) (int32, bool) {
	// IDs is ascending (ids are assigned from a counter and reported in
	// insertion order), so binary search.
	if k, ok := slices.BinarySearch(r.IDs, id); ok {
		return r.Labels[k], true
	}
	return -1, false
}

// NewStreamingClusterer prepares an empty streaming clusterer for
// dims-dimensional points at the given eps. Like Clusterer, the structure is
// pinned to one eps; runs may vary every other Config field.
func NewStreamingClusterer(dims int, eps float64) (*StreamingClusterer, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("pdbscan: dims must be positive, got %d", dims)
	}
	if eps <= 0 {
		return nil, fmt.Errorf("pdbscan: Eps must be positive, got %v", eps)
	}
	return &StreamingClusterer{
		dims:   dims,
		eps:    eps,
		dyn:    grid.NewDynamic(dims, eps),
		inc:    core.NewIncremental(),
		arena:  core.NewArena(),
		slotOf: make(map[int64]int32),
	}, nil
}

// Dims returns the dimensionality of the points.
func (s *StreamingClusterer) Dims() int { return s.dims }

// Eps returns the radius the structure is built for.
func (s *StreamingClusterer) Eps() float64 { return s.eps }

// Len returns the number of live points.
func (s *StreamingClusterer) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ids)
}

// IDs returns the live point ids in insertion order.
func (s *StreamingClusterer) IDs() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(s.ids))
	copy(out, s.ids)
	return out
}

// Point returns a copy of the coordinates of the point with the given id.
func (s *StreamingClusterer) Point(id int64) ([]float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, ok := s.slotOf[id]
	if !ok {
		return nil, false
	}
	out := make([]float64, s.dims)
	copy(out, s.dyn.PointAt(slot))
	return out, true
}

// Insert adds points given as coordinate rows and returns their assigned ids
// (ascending; ids are never reused). All rows must have length Dims and
// finite coordinates; on error nothing is inserted.
func (s *StreamingClusterer) Insert(points [][]float64) ([]int64, error) {
	for i, row := range points {
		if len(row) != s.dims {
			return nil, fmt.Errorf("pdbscan: row %d has %d coords, want %d", i, len(row), s.dims)
		}
		// Finite + lattice-range validation (spread is re-checked against
		// the live set by each snapshot, which can reject a Run later if
		// inserts drift more than 2^31 cells apart).
		if err := checkCoords(row, s.dims, s.eps); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(points))
	for i, row := range points {
		id := s.nextID
		s.nextID++
		slot := s.dyn.Insert(row)
		s.slotOf[id] = slot
		s.ids = append(s.ids, id)
		s.slots = append(s.slots, slot)
		out[i] = id
	}
	return out, nil
}

// InsertFlat is Insert for len(data)/Dims points stored row-major in a flat
// slice (the data is copied into the structure either way).
func (s *StreamingClusterer) InsertFlat(data []float64) ([]int64, error) {
	if len(data) == 0 || len(data)%s.dims != 0 {
		return nil, fmt.Errorf("pdbscan: data length %d is not a positive multiple of dims %d", len(data), s.dims)
	}
	rows := make([][]float64, len(data)/s.dims)
	for i := range rows {
		rows[i] = data[i*s.dims : (i+1)*s.dims]
	}
	return s.Insert(rows)
}

// Remove deletes the points with the given ids. If any id is unknown, an
// error is returned and nothing is removed.
func (s *StreamingClusterer) Remove(ids ...int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		if _, ok := s.slotOf[id]; !ok {
			return fmt.Errorf("pdbscan: unknown point id %d", id)
		}
	}
	removed := make(map[int64]bool, len(ids))
	for _, id := range ids {
		if removed[id] {
			continue
		}
		removed[id] = true
		s.dyn.Remove(s.slotOf[id])
		delete(s.slotOf, id)
	}
	keptIDs := s.ids[:0]
	keptSlots := s.slots[:0]
	for k, id := range s.ids {
		if !removed[id] {
			keptIDs = append(keptIDs, id)
			keptSlots = append(keptSlots, s.slots[k])
		}
	}
	s.ids, s.slots = keptIDs, keptSlots
	return nil
}

// Window evicts the oldest points until at most n remain (the sliding-window
// primitive) and returns the evicted ids in eviction (insertion) order.
func (s *StreamingClusterer) Window(n int) []int64 {
	if n < 0 {
		n = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ids) <= n {
		return nil
	}
	evict := make([]int64, len(s.ids)-n)
	copy(evict, s.ids[:len(evict)])
	for k, id := range evict {
		s.dyn.Remove(s.slots[k])
		delete(s.slotOf, id)
	}
	s.ids = append(s.ids[:0], s.ids[len(evict):]...)
	s.slots = append(s.slots[:0], s.slots[len(evict):]...)
	return evict
}

// Run re-clusters the current point set, touching only state invalidated by
// the mutations since the previous Run (and by Config changes: a different
// MinPts re-marks every cell; a different connectivity kind or Rho re-derives
// every edge). cfg.Eps must be zero or equal to Eps(). Running with no
// mutations and an unchanged Config re-uses everything and is a near-no-op.
//
// Running on an empty point set returns an empty result (unlike Cluster,
// which rejects empty input — a stream is legitimately empty between
// windows).
//
// Run is RunContext with a background (never-cancelled) context.
func (s *StreamingClusterer) Run(cfg Config) (*StreamResult, error) {
	return s.RunContext(context.Background(), cfg)
}

// RunContext is Run under a context: when ctx is cancelled mid-tick, the run
// stops cooperatively at the next phase or cell boundary and returns
// ctx.Err(). The point set itself is untouched (mutations live outside Run),
// but the incremental caches may have absorbed part of the tick, so they are
// dropped — the next RunContext is a full recompute (Full = true in its
// StreamStats) and returns exactly what it would have returned anyway.
//
// The snapshot that ingests pending mutations into the cell structure always
// runs to completion regardless of ctx — a snapshot consumes the dirty set
// and must not be interrupted halfway — so cancellation latency is bounded
// by the snapshot of the pending mutations plus one phase grain; for
// mutation-light ticks both are small.
func (s *StreamingClusterer) RunContext(ctx context.Context, cfg Config) (res *StreamResult, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Eps != 0 && cfg.Eps != s.eps {
		return nil, fmt.Errorf("pdbscan: StreamingClusterer built for Eps=%v cannot run with Eps=%v (create a new one)", s.eps, cfg.Eps)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Sampler != SamplerNone {
		// The incremental caches pin exact per-cell core state; a sampled
		// tick would invalidate them wholesale. Batch-only by design.
		return nil, fmt.Errorf("pdbscan: the sampled-core mode is batch-only; StreamingClusterer does not accept Sampler %q", cfg.Sampler)
	}
	if cfg.Spill {
		// Out-of-core runs stream an immutable on-disk store; the dynamic
		// grid lives in RAM. Use Snapshot/RestoreStreaming to persist
		// streaming state instead.
		return nil, fmt.Errorf("pdbscan: out-of-core runs are batch-only; StreamingClusterer does not accept Spill")
	}
	params := core.Params{
		MinPts: cfg.MinPts,
		Rho:    cfg.Rho,
	}
	if _, err := resolveMethod(s.dims, &cfg, &params); err != nil {
		return nil, err
	}
	// Reject everything rejectable BEFORE taking the snapshot: a snapshot
	// consumes the dirty set, so a config error surfacing after it would
	// leave the caches out of sync with the structure.
	if params.Graph == core.GraphApprox && params.Rho <= 0 {
		return nil, fmt.Errorf("pdbscan: approximate methods require Rho > 0, got %v", params.Rho)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// API-boundary panic handler (registered after the Unlock defer, so it
	// still holds the lock): a worker panic surfaces as an error via the
	// shared classifier, and the incremental caches — possibly
	// half-absorbed — are dropped.
	defer func() {
		if r := recover(); r != nil {
			s.inc = core.NewIncremental()
			res, err = nil, runPanicError(ctx, r)
		}
	}()
	ex := parallel.NewPoolContext(ctx, cfg.Workers)
	params.Exec = ex
	params.Arena = s.arena
	// The snapshot runs on a context-free pool with the same budget: its
	// mutations to the dynamic structure must complete once started (see the
	// RunContext doc).
	cells, dirty, err := s.dyn.Snapshot(parallel.NewPool(cfg.Workers))
	if err != nil {
		return nil, err
	}
	var cres *core.Result
	// A fresh cache (first run, or one dropped by a sharded or failed run)
	// makes the run full no matter what the snapshot's dirty info says.
	dirtyCells, full := dirty.NumAffected, dirty.Full || s.inc.Fresh()
	if full {
		dirtyCells = -1 // patched to the live cell count below
	}
	if cfg.Shards > 1 {
		// An explicitly sharded run recomputes everything through the
		// partition/merge path and bypasses the incremental caches. The
		// snapshot's dirty info is consumed here without reaching them, so
		// they are dropped either way — the next incremental Run rebuilds
		// from clean state. (Shards = 0 deliberately stays incremental; see
		// Config.Shards.)
		s.inc = core.NewIncremental()
		// The batch pipelines run cell-major; materialize the snapshot's
		// payload (the incremental path below never needs it — its caches are
		// original-index and it forces the indirect layout). Like the
		// snapshot, the copy is cached inside the snapshot and must complete
		// once started, so it runs on a context-free pool.
		cells.EnsurePayload(parallel.NewPool(cfg.Workers))
		part, perr := grid.MakePartition(ex, cells, cfg.Shards)
		if perr != nil {
			return nil, perr
		}
		// A partition cut on a cancelled pool may be arbitrary; bail before
		// handing it to the pipeline.
		if cerr := ex.Err(); cerr != nil {
			return nil, cerr
		}
		if part.NumShards <= 1 {
			// Uncuttable lattice: the monolithic phases parallelize better
			// than a one-shard run would (same fallback as Clusterer.Run).
			cres, err = core.Run(cells, params)
		} else {
			cres, err = core.RunSharded(cells, params, part)
		}
		if err != nil {
			return nil, err
		}
		dirtyCells, full = -1, true // -1: patched to the live cell count below
	} else {
		// Run the incremental pipeline even when the stream is empty: every
		// snapshot's DirtyInfo must reach the caches exactly once, and an
		// empty tick is how dying cells' cached core lists get retired
		// (skipping it would leak them into the next non-empty tick as
		// phantom clusters — pinned by the FuzzStreamingOps corpus).
		cres, err = core.RunIncremental(cells, params, s.inc, dirty)
		if err != nil {
			// The snapshot's dirty info is spent but the caches never
			// absorbed it; drop them so the next Run recomputes from clean
			// state instead of silently reusing stale entries.
			s.inc = core.NewIncremental()
			return nil, err
		}
	}
	numCells := 0
	for g := 0; g < cells.NumCells(); g++ {
		if cells.CellSize(g) > 0 {
			numCells++
		}
	}
	if dirtyCells < 0 {
		dirtyCells = numCells // sharded runs recompute every live cell
	}
	s.lastStats = StreamStats{
		NumPoints:  len(s.ids),
		NumCells:   numCells,
		DirtyCells: dirtyCells,
		Full:       full,
	}

	// Re-index from point slots to insertion order.
	out := &StreamResult{
		Result: Result{
			Labels:      make([]int32, len(s.ids)),
			Core:        make([]bool, len(s.ids)),
			Border:      make(map[int32][]int32, len(cres.Border)),
			NumClusters: cres.NumClusters,
		},
		IDs: make([]int64, len(s.ids)),
	}
	posOfSlot := make([]int32, s.dyn.NumPointSlots())
	for k, id := range s.ids {
		slot := s.slots[k]
		posOfSlot[slot] = int32(k)
		out.IDs[k] = id
		out.Labels[k] = cres.Labels[slot]
		out.Core[k] = cres.Core[slot]
	}
	for slot, member := range cres.Border {
		out.Border[posOfSlot[slot]] = member
	}
	return out, nil
}
