package pdbscan

import (
	"math"
	"strings"
	"testing"
)

// TestConfigValidateTable exercises the exported Config.Validate directly:
// every invalid field is rejected with a message naming the field, and every
// valid shape passes. This is the pre-queue validation services apply before
// paying to schedule a request (shared by Cluster, Clusterer.Run/RunContext,
// StreamingClusterer.Run/RunContext, and engine.Engine.Submit).
func TestConfigValidateTable(t *testing.T) {
	valid := Config{Eps: 2, MinPts: 5}
	cases := []struct {
		name  string
		mut   func(*Config)
		field string // expected substring of the error; "" = valid
	}{
		{"valid minimal", func(c *Config) {}, ""},
		{"valid zero eps (deferred)", func(c *Config) { c.Eps = 0 }, ""},
		{"valid auto method", func(c *Config) { c.Method = MethodAuto }, ""},
		{"valid every method", func(c *Config) { c.Method = Method2DBoxDelaunay }, ""},
		{"valid rho", func(c *Config) { c.Method = MethodApprox; c.Rho = 0.1 }, ""},
		{"valid workers/shards/buckets", func(c *Config) { c.Workers = 4; c.Shards = 7; c.Buckets = 8; c.Bucketing = true }, ""},

		{"negative eps", func(c *Config) { c.Eps = -1 }, "Eps"},
		{"NaN eps", func(c *Config) { c.Eps = math.NaN() }, "Eps"},
		{"Inf eps", func(c *Config) { c.Eps = math.Inf(1) }, "Eps"},
		{"zero minpts", func(c *Config) { c.MinPts = 0 }, "MinPts"},
		{"negative minpts", func(c *Config) { c.MinPts = -3 }, "MinPts"},
		{"unknown method", func(c *Config) { c.Method = "bogus" }, "method"},
		{"negative rho", func(c *Config) { c.Rho = -0.5 }, "Rho"},
		{"NaN rho", func(c *Config) { c.Rho = math.NaN() }, "Rho"},
		{"Inf rho", func(c *Config) { c.Rho = math.Inf(-1) }, "Rho"},
		{"negative workers", func(c *Config) { c.Workers = -1 }, "Workers"},
		{"negative shards", func(c *Config) { c.Shards = -2 }, "Shards"},
		{"negative buckets", func(c *Config) { c.Buckets = -1 }, "Buckets"},
	}
	for _, tc := range cases {
		cfg := valid
		tc.mut(&cfg)
		err := cfg.Validate()
		if tc.field == "" {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: Validate() accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("%s: error %q does not name field %q", tc.name, err, tc.field)
		}
	}
}

// TestValidateMatchesRunRejection pins that a Config rejected by Validate is
// rejected by the run paths too (same up-front check), so pre-validating
// callers never queue a job the run would bounce.
func TestValidateMatchesRunRejection(t *testing.T) {
	rows := blobs(60, 2, 19)
	bad := []Config{
		{Eps: 2, MinPts: 0},
		{Eps: 2, MinPts: 5, Method: "bogus"},
		{Eps: 2, MinPts: 5, Rho: -1},
		{Eps: 2, MinPts: 5, Workers: -1},
		{Eps: 2, MinPts: 5, Shards: -1},
		{Eps: 2, MinPts: 5, Buckets: -1},
	}
	c, err := NewClusterer(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStreamingClusterer(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(rows); err != nil {
		t.Fatal(err)
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Fatalf("case %d: Validate accepted a bad config", i)
		}
		if _, err := Cluster(rows, cfg); err == nil {
			t.Errorf("case %d: Cluster accepted", i)
		}
		if _, err := c.Run(cfg); err == nil {
			t.Errorf("case %d: Clusterer.Run accepted", i)
		}
		if _, err := s.Run(cfg); err == nil {
			t.Errorf("case %d: StreamingClusterer.Run accepted", i)
		}
	}
}
