package pdbscan

import (
	"math"
	"strings"
	"testing"
)

// TestConfigValidateTable exercises the exported Config.Validate directly:
// every invalid field is rejected with a message naming the field, and every
// valid shape passes. This is the pre-queue validation services apply before
// paying to schedule a request (shared by Cluster, Clusterer.Run/RunContext,
// StreamingClusterer.Run/RunContext, and engine.Engine.Submit).
func TestConfigValidateTable(t *testing.T) {
	valid := Config{Eps: 2, MinPts: 5}
	cases := []struct {
		name  string
		mut   func(*Config)
		field string // expected substring of the error; "" = valid
	}{
		{"valid minimal", func(c *Config) {}, ""},
		{"valid zero eps (deferred)", func(c *Config) { c.Eps = 0 }, ""},
		{"valid auto method", func(c *Config) { c.Method = MethodAuto }, ""},
		{"valid every method", func(c *Config) { c.Method = Method2DBoxDelaunay }, ""},
		{"valid rho", func(c *Config) { c.Method = MethodApprox; c.Rho = 0.1 }, ""},
		{"valid workers/shards/buckets", func(c *Config) { c.Workers = 4; c.Shards = 7; c.Buckets = 8; c.Bucketing = true }, ""},

		{"negative eps", func(c *Config) { c.Eps = -1 }, "Eps"},
		{"NaN eps", func(c *Config) { c.Eps = math.NaN() }, "Eps"},
		{"Inf eps", func(c *Config) { c.Eps = math.Inf(1) }, "Eps"},
		{"zero minpts", func(c *Config) { c.MinPts = 0 }, "MinPts"},
		{"negative minpts", func(c *Config) { c.MinPts = -3 }, "MinPts"},
		{"unknown method", func(c *Config) { c.Method = "bogus" }, "method"},
		{"negative rho", func(c *Config) { c.Rho = -0.5 }, "Rho"},
		{"NaN rho", func(c *Config) { c.Rho = math.NaN() }, "Rho"},
		{"Inf rho", func(c *Config) { c.Rho = math.Inf(-1) }, "Rho"},
		{"negative workers", func(c *Config) { c.Workers = -1 }, "Workers"},
		{"negative shards", func(c *Config) { c.Shards = -2 }, "Shards"},
		{"negative buckets", func(c *Config) { c.Buckets = -1 }, "Buckets"},

		{"valid uniform sampler", func(c *Config) { c.Sampler = SamplerUniform; c.SampleFrac = 0.1 }, ""},
		{"valid kcenter sampler full frac", func(c *Config) { c.Sampler = SamplerKCenter; c.SampleFrac = 1 }, ""},
		{"valid sampler with monolithic shards", func(c *Config) { c.Sampler = SamplerUniform; c.SampleFrac = 0.5; c.Shards = 1 }, ""},
		{"unknown sampler", func(c *Config) { c.Sampler = "bogus"; c.SampleFrac = 0.1 }, "sampler"},
		{"frac without sampler", func(c *Config) { c.SampleFrac = 0.1 }, "SampleFrac"},
		{"sampler without frac", func(c *Config) { c.Sampler = SamplerUniform }, "SampleFrac"},
		{"frac above one", func(c *Config) { c.Sampler = SamplerUniform; c.SampleFrac = 1.5 }, "SampleFrac"},
		{"negative frac", func(c *Config) { c.Sampler = SamplerKCenter; c.SampleFrac = -0.2 }, "SampleFrac"},
		{"NaN frac", func(c *Config) { c.Sampler = SamplerUniform; c.SampleFrac = math.NaN() }, "SampleFrac"},
		{"sampler with multi-shard", func(c *Config) { c.Sampler = SamplerUniform; c.SampleFrac = 0.1; c.Shards = 2 }, "Shards"},

		{"valid spill", func(c *Config) { c.Spill = true }, ""},
		{"valid spill with budget", func(c *Config) { c.Spill = true; c.MaxResidentBytes = 1 << 20 }, ""},
		{"negative budget", func(c *Config) { c.Spill = true; c.MaxResidentBytes = -1 }, "MaxResidentBytes"},
		{"budget without spill", func(c *Config) { c.MaxResidentBytes = 1 << 20 }, "Spill"},
		{"spill with sampler", func(c *Config) { c.Spill = true; c.Sampler = SamplerUniform; c.SampleFrac = 0.1 }, "Sampler"},
		{"spill with shards", func(c *Config) { c.Spill = true; c.Shards = 4 }, "Shards"},
	}
	for _, tc := range cases {
		cfg := valid
		tc.mut(&cfg)
		err := cfg.Validate()
		if tc.field == "" {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: Validate() accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("%s: error %q does not name field %q", tc.name, err, tc.field)
		}
	}
}

// TestValidateMatchesRunRejection pins that a Config rejected by Validate is
// rejected by the run paths too (same up-front check), so pre-validating
// callers never queue a job the run would bounce.
func TestValidateMatchesRunRejection(t *testing.T) {
	rows := blobs(60, 2, 19)
	bad := []Config{
		{Eps: 2, MinPts: 0},
		{Eps: 2, MinPts: 5, Method: "bogus"},
		{Eps: 2, MinPts: 5, Rho: -1},
		{Eps: 2, MinPts: 5, Workers: -1},
		{Eps: 2, MinPts: 5, Shards: -1},
		{Eps: 2, MinPts: 5, Buckets: -1},
		{Eps: 2, MinPts: 5, Sampler: "bogus", SampleFrac: 0.1},
		{Eps: 2, MinPts: 5, Sampler: SamplerUniform},
		{Eps: 2, MinPts: 5, Sampler: SamplerUniform, SampleFrac: 0.1, Shards: 2},
	}
	c, err := NewClusterer(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStreamingClusterer(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(rows); err != nil {
		t.Fatal(err)
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Fatalf("case %d: Validate accepted a bad config", i)
		}
		if _, err := Cluster(rows, cfg); err == nil {
			t.Errorf("case %d: Cluster accepted", i)
		}
		if _, err := c.Run(cfg); err == nil {
			t.Errorf("case %d: Clusterer.Run accepted", i)
		}
		if _, err := s.Run(cfg); err == nil {
			t.Errorf("case %d: StreamingClusterer.Run accepted", i)
		}
		if _, err := c.BuildHierarchyContext(nil, cfg); err == nil {
			t.Errorf("case %d: BuildHierarchyContext accepted", i)
		}
	}
}

// TestHierarchyValidationTable pins the hierarchy entry points' validation:
// BuildHierarchyContext applies the shared Config.Validate (MinPts bounds,
// Workers, eps-match against the Clusterer), and the query side rejects
// non-finite, non-positive, and beyond-build radii through ValidateEps —
// the same check CutEps and engine.Submit apply.
func TestHierarchyValidationTable(t *testing.T) {
	rows := blobs(80, 2, 5)
	c, err := NewClusterer(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	buildCases := []struct {
		name  string
		cfg   Config
		field string // expected substring of the error; "" = valid
	}{
		{"valid", Config{MinPts: 3}, ""},
		{"valid explicit eps", Config{Eps: 2, MinPts: 3}, ""},
		{"valid explicit workers", Config{MinPts: 3, Workers: 2}, ""},
		{"zero minpts", Config{MinPts: 0}, "MinPts"},
		{"negative minpts", Config{MinPts: -2}, "MinPts"},
		{"negative workers", Config{MinPts: 3, Workers: -1}, "Workers"},
		{"mismatched eps", Config{Eps: 3, MinPts: 3}, "Eps"},
		{"NaN eps", Config{Eps: math.NaN(), MinPts: 3}, "Eps"},
	}
	for _, tc := range buildCases {
		_, err := c.BuildHierarchyContext(nil, tc.cfg)
		if tc.field == "" {
			if err != nil {
				t.Errorf("build %s: %v, want nil", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("build %s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("build %s: error %q does not name %q", tc.name, err, tc.field)
		}
	}
	h, err := c.BuildHierarchy(3)
	if err != nil {
		t.Fatal(err)
	}
	cutCases := []struct {
		name string
		eps  float64
		ok   bool
	}{
		{"valid interior", 1, true},
		{"valid at build eps", 2, true},
		{"zero", 0, false},
		{"negative", -1, false},
		{"NaN", math.NaN(), false},
		{"+Inf", math.Inf(1), false},
		{"-Inf", math.Inf(-1), false},
		{"beyond build eps", 2.5, false},
	}
	for _, tc := range cutCases {
		verr := h.ValidateEps(tc.eps)
		_, cerr := h.CutEps(tc.eps)
		if tc.ok {
			if verr != nil || cerr != nil {
				t.Errorf("cut %s: ValidateEps=%v CutEps=%v, want nil", tc.name, verr, cerr)
			}
			continue
		}
		if verr == nil || cerr == nil {
			t.Errorf("cut %s: ValidateEps=%v CutEps=%v, want errors", tc.name, verr, cerr)
		}
	}
	if _, err := h.CutEpsContext(nil, 1, -1); err == nil || !strings.Contains(err.Error(), "Workers") {
		t.Errorf("CutEpsContext workers=-1: %v", err)
	}
	if _, _, err := h.CutKContext(nil, 2, -1); err == nil || !strings.Contains(err.Error(), "Workers") {
		t.Errorf("CutKContext workers=-1: %v", err)
	}
}
