package pdbscan

import (
	"sync"
	"testing"

	"pdbscan/internal/core"
	"pdbscan/internal/dataset"
	"pdbscan/internal/geom"
	"pdbscan/internal/metrics"
)

// bruteSampled is the DBSCAN++ oracle: given the sample mask, a point is core
// iff it is sampled and has >= minPts neighbors within eps among ALL points;
// cores are clustered by eps-connectivity; every non-core point joins each
// cluster with a core point within eps. It mirrors metrics.BruteDBSCAN with
// the core definition restricted to the mask, and returns the same shape so
// metrics.SameDBSCANResult can compare a library result against it.
func bruteSampled(pts geom.Points, eps float64, minPts int, mask []bool) *metrics.BruteResult {
	n := pts.N
	eps2 := eps * eps
	core := make([]bool, n)
	for i := 0; i < n; i++ {
		if !mask[i] {
			continue
		}
		count := 0
		for j := 0; j < n; j++ {
			if geom.DistSq(pts.At(i), pts.At(j)) <= eps2 {
				count++
			}
		}
		core[i] = count >= minPts
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	numClusters := 0
	var stack []int
	for s := 0; s < n; s++ {
		if !core[s] || comp[s] >= 0 {
			continue
		}
		comp[s] = numClusters
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for v := 0; v < n; v++ {
				if v == u || !core[v] || comp[v] >= 0 {
					continue
				}
				if geom.DistSq(pts.At(u), pts.At(v)) <= eps2 {
					comp[v] = numClusters
					stack = append(stack, v)
				}
			}
		}
		numClusters++
	}
	clusters := make([][]int, n)
	for i := 0; i < n; i++ {
		if core[i] {
			clusters[i] = []int{comp[i]}
			continue
		}
		var set []int
		for j := 0; j < n; j++ {
			if !core[j] || geom.DistSq(pts.At(i), pts.At(j)) > eps2 {
				continue
			}
			c := comp[j]
			found := false
			for _, x := range set {
				if x == c {
					found = true
					break
				}
			}
			if !found {
				set = append(set, c)
			}
		}
		for a := 1; a < len(set); a++ {
			b := a
			for b > 0 && set[b] < set[b-1] {
				set[b], set[b-1] = set[b-1], set[b]
				b--
			}
		}
		clusters[i] = set
	}
	return &metrics.BruteResult{Core: core, Clusters: clusters, NumClusters: numClusters}
}

func flatten(rows [][]float64) geom.Points {
	pts, err := geom.FromRows(rows)
	if err != nil {
		panic(err)
	}
	return pts
}

// TestSampledMatchesOracle pins the sampled-core mode's semantics exactly:
// the library result must equal the brute-force DBSCAN++ oracle computed over
// the same mask, up to cluster relabeling — across methods (the cell-graph
// machinery must treat sampled cores like any cores) and across big-cell /
// small-cell regimes (MinPts varies the all-core shortcut's reach).
func TestSampledMatchesOracle(t *testing.T) {
	rows := blobs(400, 2, 31)
	pts := flatten(rows)
	const eps = 3.0
	for _, tc := range []struct {
		name   string
		minPts int
		method Method
		frac   float64
	}{
		{"exact-bcp small frac", 5, MethodExact, 0.2},
		{"2d-grid-bcp small frac", 5, Method2DGridBCP, 0.2},
		{"2d-grid-usec", 5, Method2DGridUSEC, 0.3},
		{"exact-qt", 5, MethodExactQt, 0.3},
		{"big cells (low minPts)", 2, Method2DGridBCP, 0.25},
		{"tiny frac", 8, MethodExact, 0.05},
	} {
		mask := core.UniformMask(nil, pts.N, tc.frac, 9)
		ref := bruteSampled(pts, eps, tc.minPts, mask)
		c, err := NewClusterer(rows, eps)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(Config{
			MinPts: tc.minPts, Method: tc.method,
			Sampler: SamplerUniform, SampleFrac: tc.frac, SampleSeed: 9,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := metrics.SameDBSCANResult(ref, res.Core, res.Labels, res.Border, res.NumClusters); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

// TestSampledFullFracIsExact pins the boundary invariant: SampleFrac = 1
// samples every point, so both samplers must reproduce the exact run
// bit-for-bit (same labels, not just the same partition — the pipeline
// differs only in gates that are no-ops on a full mask).
func TestSampledFullFracIsExact(t *testing.T) {
	rows := blobs(600, 2, 17)
	c, err := NewClusterer(rows, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := c.Run(Config{MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, sampler := range []Sampler{SamplerUniform, SamplerKCenter} {
		res, err := c.Run(Config{MinPts: 5, Sampler: sampler, SampleFrac: 1, SampleSeed: 3})
		if err != nil {
			t.Fatalf("%s: %v", sampler, err)
		}
		if res.NumClusters != exact.NumClusters {
			t.Fatalf("%s: %d clusters, exact found %d", sampler, res.NumClusters, exact.NumClusters)
		}
		for i := range exact.Labels {
			if res.Labels[i] != exact.Labels[i] || res.Core[i] != exact.Core[i] {
				t.Fatalf("%s: point %d diverges (label %d/%d, core %v/%v)", sampler,
					i, res.Labels[i], exact.Labels[i], res.Core[i], exact.Core[i])
			}
		}
	}
}

// TestSampledDeterministicAcrossWorkers: one (Sampler, SampleFrac,
// SampleSeed) must produce the identical clustering at any worker budget —
// fresh Clusterers per worker count, so the mask cache cannot mask a
// nondeterministic sampler.
func TestSampledDeterministicAcrossWorkers(t *testing.T) {
	rows := blobs(800, 2, 23)
	run := func(workers int, sampler Sampler) *Result {
		c, err := NewClusterer(rows, 2.5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(Config{
			MinPts: 5, Workers: workers,
			Sampler: sampler, SampleFrac: 0.3, SampleSeed: 77,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, sampler := range []Sampler{SamplerUniform, SamplerKCenter} {
		ref := run(1, sampler)
		for _, w := range []int{2, 3, 7} {
			got := run(w, sampler)
			if got.NumClusters != ref.NumClusters {
				t.Fatalf("%s workers=%d: %d clusters, want %d", sampler, w, got.NumClusters, ref.NumClusters)
			}
			// Labels are assigned from deterministic cell state, so they must
			// be identical, not just permutation-equal.
			for i := range ref.Labels {
				if got.Labels[i] != ref.Labels[i] || got.Core[i] != ref.Core[i] {
					t.Fatalf("%s workers=%d: point %d diverges", sampler, w, i)
				}
			}
		}
	}
}

// TestSampledQuality runs the DBSCAN++ trade-off on a varden workload:
// sampling a tenth of the points must preserve the clustering structure
// (ARI and NMI vs the exact run well above chance).
func TestSampledQuality(t *testing.T) {
	pts := dataset.SeedSpreader(dataset.SeedSpreaderConfig{N: 20000, D: 2, VarDen: true, Seed: 1})
	c, err := NewClustererFlat(pts.Data, pts.D, 1000)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := c.Run(Config{MinPts: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, sampler := range []Sampler{SamplerUniform, SamplerKCenter} {
		res, err := c.Run(Config{MinPts: 100, Sampler: sampler, SampleFrac: 0.1, SampleSeed: 5})
		if err != nil {
			t.Fatalf("%s: %v", sampler, err)
		}
		ari := metrics.AdjustedRandIndex(exact.Labels, res.Labels)
		nmi := metrics.NormalizedMutualInfo(exact.Labels, res.Labels)
		if ari < 0.9 {
			t.Errorf("%s: ARI %.3f vs exact, want >= 0.9", sampler, ari)
		}
		if nmi < 0.9 {
			t.Errorf("%s: NMI %.3f vs exact, want >= 0.9", sampler, nmi)
		}
	}
}

// TestSampledRejectedOffBatchPaths: streaming ticks and hierarchy builds must
// reject samplers up front (batch-only mode).
func TestSampledRejectedOffBatchPaths(t *testing.T) {
	cfg := Config{MinPts: 5, Sampler: SamplerUniform, SampleFrac: 0.5}
	s, err := NewStreamingClusterer(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(blobs(50, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(cfg); err == nil {
		t.Error("StreamingClusterer.Run accepted a sampler")
	}
	c, err := NewClusterer(blobs(50, 2, 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.BuildHierarchyContext(nil, cfg); err == nil {
		t.Error("BuildHierarchyContext accepted a sampler")
	}
}

// TestSampledConcurrentMixedWorkers exercises the chunked scheduler and the
// sampled-core mode under concurrent Runs with mixed worker budgets on one
// Clusterer (mask cache shared), under -race in CI. Every run must match its
// own serial reference.
func TestSampledConcurrentMixedWorkers(t *testing.T) {
	rows := blobs(1500, 2, 41)
	c, err := NewClusterer(rows, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	type job struct {
		cfg Config
		ref *Result
	}
	jobs := []job{
		{cfg: Config{MinPts: 5}},
		{cfg: Config{MinPts: 5, Sampler: SamplerUniform, SampleFrac: 0.3, SampleSeed: 1}},
		{cfg: Config{MinPts: 5, Sampler: SamplerUniform, SampleFrac: 0.1, SampleSeed: 2}},
		{cfg: Config{MinPts: 8, Sampler: SamplerKCenter, SampleFrac: 0.2, SampleSeed: 3}},
		{cfg: Config{MinPts: 5, Shards: 3}},
	}
	for i := range jobs {
		ref, err := c.Run(jobs[i].cfg)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i].ref = ref
	}
	var wg sync.WaitGroup
	for iter := 0; iter < 3; iter++ {
		for i := range jobs {
			for _, w := range []int{1, 2, 4} {
				wg.Add(1)
				go func(j job, w int) {
					defer wg.Done()
					cfg := j.cfg
					cfg.Workers = w
					res, err := c.Run(cfg)
					if err != nil {
						t.Errorf("workers=%d: %v", w, err)
						return
					}
					if res.NumClusters != j.ref.NumClusters {
						t.Errorf("workers=%d: %d clusters, want %d", w, res.NumClusters, j.ref.NumClusters)
						return
					}
					for p := range j.ref.Labels {
						if res.Labels[p] != j.ref.Labels[p] {
							t.Errorf("workers=%d: point %d label %d, want %d", w, p, res.Labels[p], j.ref.Labels[p])
							return
						}
					}
				}(jobs[i], w)
			}
		}
	}
	wg.Wait()
}
