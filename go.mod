module pdbscan

go 1.24
