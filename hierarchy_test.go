package pdbscan

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// hierarchyEpsGrid is the ascending query grid the property tests sweep.
func hierarchyEpsGrid(eps float64, n int) []float64 {
	qs := make([]float64, n)
	for i := range qs {
		qs[i] = eps * float64(i+1) / float64(n)
	}
	return qs
}

// TestHierarchyMonotonicity pins the dendrogram's defining metamorphic
// properties over an ascending eps sweep: core flags only switch on, the
// noise set only shrinks, and clusters only merge — two core points sharing
// a cluster at a smaller radius share one at every larger radius.
func TestHierarchyMonotonicity(t *testing.T) {
	for _, d := range []int{2, 3} {
		rows := blobs(1500, d, 7)
		c, err := NewClusterer(rows, 3.0)
		if err != nil {
			t.Fatal(err)
		}
		h, err := c.BuildHierarchy(5)
		if err != nil {
			t.Fatal(err)
		}
		var prev *Result
		for _, q := range hierarchyEpsGrid(3.0, 12) {
			res, err := h.CutEps(q)
			if err != nil {
				t.Fatalf("d=%d CutEps(%v): %v", d, q, err)
			}
			if prev != nil {
				// label map: prev cluster -> cluster at the larger radius.
				merge := make([]int32, prev.NumClusters)
				for i := range merge {
					merge[i] = -1
				}
				for i := range rows {
					if prev.Core[i] && !res.Core[i] {
						t.Fatalf("d=%d eps=%v: point %d lost its core flag as eps grew", d, q, i)
					}
					if prev.Labels[i] >= 0 && res.Labels[i] < 0 {
						t.Fatalf("d=%d eps=%v: point %d became noise as eps grew", d, q, i)
					}
					if !prev.Core[i] {
						continue
					}
					pl, nl := prev.Labels[i], res.Labels[i]
					if merge[pl] == -1 {
						merge[pl] = nl
					} else if merge[pl] != nl {
						t.Fatalf("d=%d eps=%v: cluster %d split (core members in %d and %d)", d, q, pl, merge[pl], nl)
					}
				}
			}
			prev = res
		}
	}
}

// TestHierarchyCutDeterminism: the same query must return bit-identical
// results no matter the query order (ascending advances the shared replay,
// descending forces resets) or concurrency. Core labels are assigned in
// ascending point order off min-index union-find roots, so even strict
// label equality must hold, not just permutation equivalence.
func TestHierarchyCutDeterminism(t *testing.T) {
	rows := blobs(2000, 2, 13)
	c, err := NewClusterer(rows, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.BuildHierarchy(4)
	if err != nil {
		t.Fatal(err)
	}
	grid := hierarchyEpsGrid(3.0, 8)
	want := make([]*Result, len(grid))
	for i, q := range grid {
		if want[i], err = h.CutEps(q); err != nil {
			t.Fatal(err)
		}
	}
	// Descending then ascending again: every answer must repeat exactly.
	for pass := 0; pass < 2; pass++ {
		for i := len(grid) - 1; i >= 0; i-- {
			res, err := h.CutEps(grid[i])
			if err != nil {
				t.Fatal(err)
			}
			if err := labelsEqual(res, want[i]); err != nil {
				t.Fatalf("pass %d eps=%v: %v", pass, grid[i], err)
			}
		}
	}
	// Concurrent queries in shuffled order on the one shared Hierarchy (the
	// -race run makes this the replay-locking test).
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for _, i := range rng.Perm(len(grid)) {
				res, err := h.CutEps(grid[i])
				if err != nil {
					errs <- err
					return
				}
				if err := labelsEqual(res, want[i]); err != nil {
					errs <- fmt.Errorf("concurrent eps=%v: %v", grid[i], err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestHierarchyBuildDeterminism: the structure itself (core distances and
// the forest edge list) is identical regardless of the worker budget — the
// strict total edge order makes the MSF unique, so block boundaries cannot
// leak into the output.
func TestHierarchyBuildDeterminism(t *testing.T) {
	rows := blobs(1200, 3, 29)
	var ref *Hierarchy
	for _, workers := range []int{1, 2, 7} {
		c, err := NewClusterer(rows, 3.0)
		if err != nil {
			t.Fatal(err)
		}
		h, err := c.BuildHierarchyContext(context.Background(), Config{MinPts: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = h
			continue
		}
		for i, v := range h.cd2 {
			if v != ref.cd2[i] && !(math.IsInf(v, 1) && math.IsInf(ref.cd2[i], 1)) {
				t.Fatalf("workers=%d: cd2[%d] = %v vs %v", workers, i, v, ref.cd2[i])
			}
		}
		if len(h.edges) != len(ref.edges) {
			t.Fatalf("workers=%d: %d edges vs %d", workers, len(h.edges), len(ref.edges))
		}
		for i, e := range h.edges {
			if e != ref.edges[i] {
				t.Fatalf("workers=%d: edge %d = %+v vs %+v", workers, i, e, ref.edges[i])
			}
		}
	}
}

// TestHierarchyCache: one build per MinPts — repeated and concurrent
// BuildHierarchy calls return the same *Hierarchy; distinct MinPts get
// distinct hierarchies.
func TestHierarchyCache(t *testing.T) {
	rows := blobs(600, 2, 3)
	c, err := NewClusterer(rows, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := c.BuildHierarchy(4)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.BuildHierarchy(4)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("second BuildHierarchy at the same MinPts rebuilt instead of reusing")
	}
	h3, err := c.BuildHierarchy(8)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("distinct MinPts shared a hierarchy")
	}
	var wg sync.WaitGroup
	got := make([]*Hierarchy, 6)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], _ = c.BuildHierarchy(12)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] == nil || got[i] != got[0] {
			t.Fatalf("concurrent builds diverged: %p vs %p", got[i], got[0])
		}
	}
}

// TestHierarchyBuildCancellation cancels a build from inside every pipeline
// phase via the PhaseHook seam and checks the lazyCells discipline: the
// cancelled build returns ctx.Err(), latches nothing, and the next build
// runs clean and answers queries exactly like batch Cluster.
func TestHierarchyBuildCancellation(t *testing.T) {
	rows := blobs(900, 2, 41)
	for _, phase := range []string{"coredist", "edges", "mst", "done"} {
		c, err := NewClusterer(rows, 2.5)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		c.hierHook = func(p string) {
			if p == phase {
				cancel()
			}
		}
		_, err = c.BuildHierarchyContext(ctx, Config{MinPts: 5})
		if err != context.Canceled {
			t.Fatalf("phase %s: err = %v, want context.Canceled", phase, err)
		}
		c.hierMu.Lock()
		lh := c.hiers[5]
		if lh == nil || lh.h != nil || lh.building != nil {
			t.Fatalf("phase %s: cancelled build latched state: %+v", phase, lh)
		}
		c.hierMu.Unlock()
		// The rebuild must start from scratch and produce the exact answer.
		c.hierHook = nil
		h, err := c.BuildHierarchy(5)
		if err != nil {
			t.Fatalf("phase %s: rebuild: %v", phase, err)
		}
		cut, err := h.CutEps(1.25)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := Cluster(rows, Config{Eps: 1.25, MinPts: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := equivalentResults(cut, batch); err != nil {
			t.Fatalf("phase %s: rebuild after cancellation: %v", phase, err)
		}
	}
	// Pre-cancelled context: rejected before any build state exists.
	c, err := NewClusterer(rows, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.BuildHierarchyContext(ctx, Config{MinPts: 5}); err != context.Canceled {
		t.Fatalf("pre-cancelled build: err = %v", err)
	}
	if c.hiers != nil && c.hiers[5] != nil && (c.hiers[5].h != nil || c.hiers[5].building != nil) {
		t.Fatal("pre-cancelled build left state behind")
	}
}

// TestHierarchyCutCancellation: a cut on a cancelled context returns the
// context's error and no result, and the hierarchy stays usable.
func TestHierarchyCutCancellation(t *testing.T) {
	rows := blobs(800, 2, 19)
	c, err := NewClusterer(rows, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.BuildHierarchy(4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := h.CutEpsContext(ctx, 1.0, 0); err != context.Canceled || res != nil {
		t.Fatalf("cancelled cut: res=%v err=%v", res, err)
	}
	if _, _, err := h.CutKContext(ctx, 2, 0); err != context.Canceled {
		t.Fatalf("cancelled CutK: err=%v", err)
	}
	res, err := h.CutEps(1.0)
	if err != nil || res == nil {
		t.Fatalf("cut after a cancelled cut: %v", err)
	}
}

// TestHierarchyCutK: for every cluster count the eps sweep actually
// realizes, CutK must find a radius realizing it — and its result must be
// the CutEps answer at that radius with exactly k clusters. Unrealizable
// counts are errors.
func TestHierarchyCutK(t *testing.T) {
	rows := blobs(900, 2, 23)
	c, err := NewClusterer(rows, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.BuildHierarchy(5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, q := range hierarchyEpsGrid(3.0, 24) {
		res, err := h.CutEps(q)
		if err != nil {
			t.Fatal(err)
		}
		seen[res.NumClusters] = true
	}
	for k := range seen {
		if k == 0 {
			continue
		}
		res, eps, err := h.CutK(k)
		if err != nil {
			t.Fatalf("CutK(%d): %v (count seen in the sweep)", k, err)
		}
		if res.NumClusters != k {
			t.Fatalf("CutK(%d) returned %d clusters", k, res.NumClusters)
		}
		if !(eps > 0 && eps <= 3.0) {
			t.Fatalf("CutK(%d) eps = %v out of (0, 3]", k, eps)
		}
		ref, err := h.CutEps(eps)
		if err != nil {
			t.Fatal(err)
		}
		// eps is the sqrt of the internal threshold; requerying at it must
		// reproduce the same clustering whenever the rounding keeps the
		// count (it does on this layout).
		if err := labelsEqual(res, ref); err != nil {
			t.Fatalf("CutK(%d) vs CutEps(%v): %v", k, eps, err)
		}
	}
	if _, _, err := h.CutK(len(rows) + 1); err == nil {
		t.Fatal("CutK beyond the point count succeeded")
	}
	if _, _, err := h.CutK(0); err == nil {
		t.Fatal("CutK(0) succeeded")
	}
}

// TestHierarchyExtractStable: on well-separated blobs the most stable
// antichain is the blobs themselves, regardless of the (much larger) build
// radius; repeated extraction is deterministic, and extraction runs safely
// concurrently with cuts.
func TestHierarchyExtractStable(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	var rows [][]float64
	truth := make([]int, 0, 460)
	for b := 0; b < 3; b++ {
		for i := 0; i < 150; i++ {
			rows = append(rows, []float64{
				float64(b)*40 + rng.NormFloat64(),
				rng.NormFloat64(),
			})
			truth = append(truth, b)
		}
	}
	for i := 0; i < 10; i++ {
		rows = append(rows, []float64{rng.Float64() * 120, 25 + rng.Float64()*10})
		truth = append(truth, -1)
	}
	c, err := NewClusterer(rows, 60)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.BuildHierarchy(5)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := h.ExtractStable(0)
	if err != nil {
		t.Fatal(err)
	}
	if sr.NumClusters != 3 {
		t.Fatalf("stable clusters = %d, want 3 (clusters: %+v)", sr.NumClusters, sr.Clusters)
	}
	// Each blob maps to one stable cluster, near-completely.
	blobLbl := map[int]int32{}
	agree := 0
	for i, b := range truth {
		if b < 0 {
			continue
		}
		if l, ok := blobLbl[b]; !ok {
			blobLbl[b] = sr.Labels[i]
		} else if l == sr.Labels[i] {
			agree++
		}
	}
	if agree < 400 {
		t.Fatalf("blob/label agreement %d/447", agree)
	}
	sizes := 0
	for _, cl := range sr.Clusters {
		if cl.Stability <= 0 {
			t.Fatalf("non-positive stability: %+v", cl)
		}
		if !(cl.MaxEps > 0 && cl.MaxEps <= 60) {
			t.Fatalf("MaxEps out of range: %+v", cl)
		}
		sizes += cl.Size
	}
	counted := 0
	for _, l := range sr.Labels {
		if l >= 0 {
			counted++
		}
	}
	if sizes != counted {
		t.Fatalf("cluster sizes sum %d but %d labeled points", sizes, counted)
	}
	// Deterministic, and safe alongside concurrent cuts.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				h.CutEps(10)
			} else {
				sr2, err := h.ExtractStable(0)
				if err != nil || sr2.NumClusters != sr.NumClusters {
					t.Errorf("concurrent ExtractStable: %v / %d clusters", err, sr2.NumClusters)
					return
				}
				for i := range sr.Labels {
					if sr.Labels[i] != sr2.Labels[i] {
						t.Errorf("ExtractStable not deterministic at %d", i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if _, err := h.ExtractStable(1); err == nil {
		t.Fatal("ExtractStable(1) succeeded")
	}
	// A threshold above every blob leaves only noise.
	srBig, err := h.ExtractStable(200)
	if err != nil {
		t.Fatal(err)
	}
	if srBig.NumClusters != 1 {
		// All three blobs are under 200 points, so only the root component
		// (everything merged below eps=60) can qualify.
		t.Fatalf("minClusterSize=200: %d clusters", srBig.NumClusters)
	}
}

// TestHierarchyMinPtsOne: MinPts=1 makes every point core with core
// distance zero — the degenerate case where each cut is pure single-linkage
// within eps.
func TestHierarchyMinPtsOne(t *testing.T) {
	rows := blobs(300, 2, 11)
	c, err := NewClusterer(rows, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.BuildHierarchy(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.5, 1.0, 2.0} {
		cut, err := h.CutEps(q)
		if err != nil {
			t.Fatal(err)
		}
		for i, core := range cut.Core {
			if !core {
				t.Fatalf("eps=%v: point %d not core at MinPts=1", q, i)
			}
		}
		batch, err := Cluster(rows, Config{Eps: q, MinPts: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := equivalentResults(cut, batch); err != nil {
			t.Fatalf("eps=%v: %v", q, err)
		}
	}
}
