// bench_test.go contains the testing.B twin of every table and figure in the
// paper's evaluation (Section 7). Each benchmark exercises the same code
// paths as the corresponding cmd/dbscanbench experiment, at a size small
// enough for `go test -bench=.`. The full sweeps (all datasets, parameter
// grids, thread counts) live in cmd/dbscanbench.
package pdbscan

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"pdbscan/internal/baseline"
	"pdbscan/internal/dataset"
	"pdbscan/internal/geom"
	"pdbscan/internal/hashtable"
	"pdbscan/internal/parallel"
	"pdbscan/internal/prim"
)

const benchN = 20000

func benchPoints(name string, n int) geom.Points {
	pts, err := dataset.Generate(name, n, 1)
	if err != nil {
		panic(err)
	}
	return pts
}

func runMethod(b *testing.B, pts geom.Points, cfg Config) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ClusterFlat(pts.Data, pts.D, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 1: parallel primitives -----------------------------------------

func BenchmarkTable1PrefixSum(b *testing.B) {
	a := make([]int64, 1<<20)
	out := make([]int64, len(a))
	for i := range a {
		a[i] = int64(i % 7)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prim.PrefixSum(nil, a, out)
	}
}

func BenchmarkTable1Filter(b *testing.B) {
	a := make([]int64, 1<<20)
	for i := range a {
		a[i] = int64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prim.Filter(nil, a, func(x int64) bool { return x%3 == 0 })
	}
}

func BenchmarkTable1ComparisonSort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]int64, 1<<19)
	for i := range src {
		src[i] = rng.Int63()
	}
	buf := make([]int64, len(src))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		prim.Sort(nil, buf, func(x, y int64) bool { return x < y })
	}
}

func BenchmarkTable1IntegerSort(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	src := make([]uint64, 1<<19)
	for i := range src {
		src[i] = uint64(rng.Intn(1 << 16))
	}
	keys := make([]uint64, len(src))
	vals := make([]int32, len(src))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(keys, src)
		prim.RadixSortPairs(nil, keys, vals, 16)
	}
}

func BenchmarkTable1Semisort(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 1<<19)
	for i := range keys {
		keys[i] = uint64(rng.Intn(1 << 12))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prim.Semisort(nil, keys)
	}
}

func BenchmarkTable1Merge(b *testing.B) {
	n := 1 << 19
	x := make([]int64, n)
	y := make([]int64, n)
	for i := 0; i < n; i++ {
		x[i] = int64(2 * i)
		y[i] = int64(2*i + 1)
	}
	out := make([]int64, 2*n)
	less := func(p, q int64) bool { return p < q }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prim.Merge(nil, x, y, out, less)
	}
}

func BenchmarkTable1HashTable(b *testing.B) {
	n := 1 << 18
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := hashtable.NewU64(n)
		parallel.For(n, func(k int) {
			tb.Insert(uint64(k)*0x9e3779b97f4a7c15+1, int32(k))
		})
		parallel.For(n, func(k int) {
			tb.Lookup(uint64(k)*0x9e3779b97f4a7c15 + 1)
		})
	}
}

// --- Figure 6: time vs eps (d >= 3) ----------------------------------------

func BenchmarkFig6TimeVsEps(b *testing.B) {
	pts := benchPoints("ss-simden-3d", benchN)
	for _, eps := range []float64{500, 1000, 2000} {
		for _, m := range []Method{MethodExact, MethodExactQt} {
			b.Run(fmt.Sprintf("%s/eps=%g", m, eps), func(b *testing.B) {
				runMethod(b, pts, Config{Eps: eps, MinPts: 10, Method: m})
			})
		}
		b.Run(fmt.Sprintf("hpdbscan/eps=%g", eps), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				baseline.HPDBSCAN(nil, pts, eps, 10)
			}
		})
	}
}

// --- Figure 7: time vs minPts ----------------------------------------------

func BenchmarkFig7TimeVsMinPts(b *testing.B) {
	pts := benchPoints("ss-simden-3d", benchN)
	for _, minPts := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("our-exact/minPts=%d", minPts), func(b *testing.B) {
			runMethod(b, pts, Config{Eps: 1000, MinPts: minPts, Method: MethodExact})
		})
	}
}

// --- Figure 8: speedup over best serial vs threads --------------------------

func BenchmarkFig8Scaling(b *testing.B) {
	pts := benchPoints("ss-varden-3d", benchN)
	for _, w := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("our-exact/workers=%d", w), func(b *testing.B) {
			runMethod(b, pts, Config{Eps: 2000, MinPts: 100, Method: MethodExact, Workers: w})
		})
	}
	b.Run("seq-dbscan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			baseline.Sequential(nil, pts, 2000, 100)
		}
	})
}

// --- Figure 9: self-relative speedup ----------------------------------------

func BenchmarkFig9SelfRelative(b *testing.B) {
	pts := benchPoints("ss-varden-3d", benchN)
	for _, w := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("our-approx/workers=%d", w), func(b *testing.B) {
			runMethod(b, pts, Config{Eps: 2000, MinPts: 100, Method: MethodApprox, Rho: 0.01, Workers: w})
		})
	}
}

// --- Figure 10: time vs rho --------------------------------------------------

func BenchmarkFig10TimeVsRho(b *testing.B) {
	pts := benchPoints("ss-simden-5d", benchN)
	for _, rho := range []float64{0.001, 0.01, 0.1} {
		b.Run(fmt.Sprintf("our-approx/rho=%g", rho), func(b *testing.B) {
			runMethod(b, pts, Config{Eps: 1000, MinPts: 100, Method: MethodApprox, Rho: rho})
		})
	}
	b.Run("our-best-exact", func(b *testing.B) {
		runMethod(b, pts, Config{Eps: 1000, MinPts: 100, Method: MethodExact})
	})
}

// --- Figure 11: the 2D variants ----------------------------------------------

func BenchmarkFig11Variants2D(b *testing.B) {
	pts := benchPoints("ss-simden-2d", benchN)
	for _, m := range []Method{
		Method2DGridBCP, Method2DGridUSEC, Method2DGridDelaunay,
		Method2DBoxBCP, Method2DBoxUSEC, Method2DBoxDelaunay,
	} {
		b.Run(string(m), func(b *testing.B) {
			runMethod(b, pts, Config{Eps: 200, MinPts: 100, Method: m})
		})
	}
}

// --- Table 2: large-scale regime vs partition/merge comparator ---------------

func BenchmarkTable2LargeScale(b *testing.B) {
	for _, ds := range []struct {
		name string
		eps  float64
	}{
		{"geolife", 40},
		{"teraclick", 3000},
	} {
		pts := benchPoints(ds.name, benchN)
		b.Run(ds.name+"/our-exact", func(b *testing.B) {
			runMethod(b, pts, Config{Eps: ds.eps, MinPts: 100, Method: MethodExact})
		})
		b.Run(ds.name+"/rpdbscan-sim", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				baseline.RPDBSCANSim(nil, pts, ds.eps, 100, 8)
			}
		})
	}
}
